//! Streaming ingest for the smishing measurement pipeline.
//!
//! The execution machinery itself lives in the core crate
//! ([`smishing_core::exec`]) — one sharded stage engine behind both the
//! batch [`Pipeline`](smishing_core::Pipeline) and this crate. Here live
//! the streaming-only pieces, plus re-exports so streaming callers have a
//! single front door:
//!
//! * [`ReportStream`](smishing_worldsim::ReportStream) (in `worldsim`)
//!   replays a world's posts in arrival order, or soaks forever;
//! * [`ingest`] runs the engine — bounded channels with backpressure,
//!   curation workers, analyst shards owning mergeable per-analysis
//!   accumulators ([`AnalysisAccs`]);
//! * [`SnapshotPlan`] (via [`ExecPlan::with_snapshots`]) injects aligned
//!   markers so a consistent [`StreamSnapshot`] — every table included —
//!   renders mid-stream without pausing ingestion;
//! * [`Checkpoint`] persists a snapshot through the serde dataset layer
//!   and [`resume`] verifies and continues an interrupted run.
//!
//! The determinism contract: for a fixed post sequence the end-of-stream
//! output equals the batch pipeline's exactly, independent of shard
//! count, curator count, channel capacity, and scheduling.

#![warn(missing_docs)]

pub mod snapshot;

pub use smishing_core::exec::{
    ingest, AnalysisAccs, ExecPlan, IngestResult, SnapshotPlan, StreamSnapshot,
};
pub use snapshot::{resume, Checkpoint, ServeState};
