//! Checkpoint/resume on top of the serde dataset layer.
//!
//! A [`Checkpoint`] freezes a [`StreamSnapshot`](crate::StreamSnapshot)
//! into the released-dataset schema (`smishing_core::dataset`) plus the
//! stream position and world identity. Because the whole pipeline is
//! deterministic, resuming does not need raw engine state: [`resume`]
//! replays the first `posts_consumed` posts through the engine, verifies
//! the rebuilt dataset matches the checkpoint row-for-row, and carries on
//! with the remainder of the stream.

use serde::{Deserialize, Serialize};
use smishing_core::dataset::{build_dataset, DatasetRow};
use smishing_core::exec::{ingest, ExecPlan, IngestResult, StreamSnapshot};
use smishing_core::CurationOptions;
use smishing_obs::Obs;
use smishing_worldsim::{Post, World};

/// Serve-side state frozen alongside a stream checkpoint, so a live
/// `smish serve --stream` can restart mid-soak and resume publishing from
/// the epoch it left off at instead of epoch 1.
///
/// Everything else the serve plane needs is deterministic replay: the
/// snapshot contents themselves are rebuilt from the stream prefix, so
/// only the epoch clock and the build/triage configuration that shaped
/// the published sequence need to survive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeState {
    /// Hub epoch at the checkpointed publish — resume seeds the hub with
    /// `epoch - 1` so its first republish lands back on this epoch.
    pub epoch: u64,
    /// Aging/eviction window the published snapshots were built with.
    pub intel_window_secs: Option<u64>,
    /// Negative-cache capacity of the triage tier.
    pub cache_capacity: usize,
}

/// A serializable stream checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Seed of the world the stream was drawn from.
    pub world_seed: u64,
    /// Scale of that world.
    pub world_scale: f64,
    /// Shard count of the engine that produced it.
    pub shards: usize,
    /// Posts consumed when the snapshot was taken.
    pub posts_consumed: u64,
    /// The released dataset built from the snapshot's unique records
    /// (Appendix C schema, via the existing serde dataset layer).
    pub dataset: Vec<DatasetRow>,
    /// Serve-side state, when the checkpoint came from a live server.
    /// Checkpoints written before this field existed still deserialize:
    /// the vendored serde treats a missing field as `null`, which an
    /// `Option` reads as `None`.
    pub serve: Option<ServeState>,
}

impl Checkpoint {
    /// Freeze a snapshot.
    pub fn capture(snap: &StreamSnapshot<'_>, plan: &ExecPlan) -> Self {
        Checkpoint {
            world_seed: snap.output.world.config.seed,
            world_scale: snap.output.world.config.scale,
            shards: plan.shards,
            posts_consumed: snap.at_posts,
            dataset: build_dataset(&snap.output.records),
            serve: None,
        }
    }

    /// Freeze a snapshot taken by a live server, recording the serve-side
    /// state needed to resume publishing where it left off.
    pub fn capture_serving(snap: &StreamSnapshot<'_>, plan: &ExecPlan, serve: ServeState) -> Self {
        Checkpoint {
            serve: Some(serve),
            ..Checkpoint::capture(snap, plan)
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Checkpoint> {
        serde_json::from_str(s)
    }

    /// Whether this checkpoint belongs to `world`.
    pub fn matches_world(&self, world: &World) -> bool {
        self.world_seed == world.config.seed && self.world_scale == world.config.scale
    }
}

/// Resume an interrupted ingest: replay `posts` (which must restart from
/// the beginning of the stream the checkpoint came from), verify the
/// checkpointed dataset is reproduced exactly at `posts_consumed`, then
/// keep ingesting to the end of the stream.
///
/// Returns an error without touching `on_snapshot` if the checkpoint is
/// from a different world, and panics if replay diverges from the
/// checkpointed dataset (determinism violation — not recoverable).
pub fn resume<'w, I, F>(
    world: &'w World,
    posts: I,
    checkpoint: &Checkpoint,
    curation: &CurationOptions,
    plan: &ExecPlan,
    mut on_snapshot: F,
) -> Result<IngestResult<'w>, String>
where
    I: Iterator<Item = Post> + Send,
    F: FnMut(StreamSnapshot<'w>),
{
    if !checkpoint.matches_world(world) {
        return Err(format!(
            "checkpoint is for world seed={:#x} scale={}, not seed={:#x} scale={}",
            checkpoint.world_seed, checkpoint.world_scale, world.config.seed, world.config.scale,
        ));
    }
    let mut replay_plan = plan.clone();
    if !replay_plan
        .snapshots
        .at
        .contains(&checkpoint.posts_consumed)
    {
        replay_plan.snapshots.at.push(checkpoint.posts_consumed);
    }
    let expected = &checkpoint.dataset;
    let result = ingest(world, posts, curation, &replay_plan, &Obs::noop(), |snap| {
        if snap.at_posts == checkpoint.posts_consumed {
            let rebuilt = build_dataset(&snap.output.records);
            assert_eq!(
                &rebuilt, expected,
                "replay diverged from checkpoint at post {}",
                snap.at_posts
            );
        }
        on_snapshot(snap);
    });
    Ok(result)
}
