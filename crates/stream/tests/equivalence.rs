//! The determinism contract: streaming ingest == batch pipeline, exactly.

use smishing_core::experiment;
use smishing_core::pipeline::{Pipeline, PipelineOutput};
use smishing_core::CurationOptions;
use smishing_obs::Obs;
use smishing_stream::{ingest, resume, Checkpoint, ExecPlan, SnapshotPlan};
use smishing_worldsim::{ReportStream, World, WorldConfig};

fn world() -> World {
    World::generate(WorldConfig {
        scale: 0.02,
        ..WorldConfig::default()
    })
}

fn plan(curators: usize, shards: usize) -> ExecPlan {
    ExecPlan {
        curators,
        shards,
        ..ExecPlan::default()
    }
}

/// Structural equality of two pipeline outputs, field by field.
fn assert_outputs_equal(a: &PipelineOutput<'_>, b: &PipelineOutput<'_>, label: &str) {
    assert_eq!(a.collection, b.collection, "{label}: collection stats");
    assert_eq!(
        a.curated_total.len(),
        b.curated_total.len(),
        "{label}: curated count"
    );
    for (x, y) in a.curated_total.iter().zip(&b.curated_total) {
        assert_eq!(x.post_id, y.post_id, "{label}");
        assert_eq!(x.text, y.text, "{label}");
        assert_eq!(x.sender_raw, y.sender_raw, "{label}");
        assert_eq!(x.url_raw, y.url_raw, "{label}");
    }
    assert_eq!(a.records.len(), b.records.len(), "{label}: record count");
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.curated.post_id, y.curated.post_id, "{label}");
        assert_eq!(x.annotation.scam_type, y.annotation.scam_type, "{label}");
        assert_eq!(x.curated.text, y.curated.text, "{label}");
    }
}

/// Render every experiment table to one string for byte comparison.
fn all_tables(out: &PipelineOutput<'_>) -> String {
    experiment::run_all(out, &Obs::noop())
        .iter()
        .map(|r| format!("== {}\n{}\n", r.id, r.table))
        .collect()
}

#[test]
fn streaming_equals_batch_across_shard_counts() {
    let w = world();
    let batch = Pipeline::default().run(&w, &Obs::noop());
    let batch_tables = all_tables(&batch);
    for shards in [1, 4] {
        let result = ingest(
            &w,
            ReportStream::replay(&w),
            &CurationOptions::default(),
            &plan(2, shards),
            &Obs::noop(),
            |_| {},
        );
        assert_eq!(result.posts_ingested, w.posts.len() as u64);
        assert_outputs_equal(&result.output, &batch, &format!("shards={shards}"));
        // Byte-identical tables, T1 through T19 and the figures.
        assert_eq!(all_tables(&result.output), batch_tables, "shards={shards}");
        // The merged accumulators agree with batch analyses too.
        result.accs.assert_matches_batch(&batch);
    }
}

#[test]
fn mid_stream_snapshot_equals_batch_over_prefix() {
    let w = world();
    let half = (w.posts.len() / 2) as u64;
    let mut snaps = Vec::new();
    let result = ingest(
        &w,
        ReportStream::replay(&w),
        &CurationOptions::default(),
        &plan(2, 3).with_snapshots(SnapshotPlan::at(&[half])),
        &Obs::noop(),
        |s| {
            snaps.push(s);
        },
    );
    // Ingestion did not stop at the snapshot: the run covered everything.
    assert_eq!(result.posts_ingested, w.posts.len() as u64);
    assert_eq!(result.snapshots_taken, 1);
    assert_eq!(snaps.len(), 1);
    let snap = &snaps[0];
    assert_eq!(snap.at_posts, half);

    // A world truncated to the first `half` posts is exactly what a batch
    // collector would have seen at that instant.
    let mut prefix_world = world();
    prefix_world.posts.truncate(half as usize);
    let prefix_batch = Pipeline::default().run(&prefix_world, &Obs::noop());
    assert_outputs_equal(&snap.output, &prefix_batch, "snapshot vs batch prefix");
    snap.accs.assert_matches_batch(&prefix_batch);
    // Every table renders mid-stream.
    let tables = snap.accs.tables();
    assert_eq!(tables.len(), 19);
    for (id, t) in &tables {
        assert!(!t.to_string().is_empty(), "{id} empty");
    }
}

#[test]
fn periodic_snapshots_fire_in_order() {
    let w = world();
    let n = w.posts.len() as u64;
    let step = n / 4;
    let mut seen = Vec::new();
    let result = ingest(
        &w,
        ReportStream::replay(&w),
        &CurationOptions::default(),
        &plan(3, 2).with_snapshots(SnapshotPlan::every(step)),
        &Obs::noop(),
        |s| {
            seen.push(s.at_posts);
        },
    );
    assert_eq!(result.snapshots_taken, seen.len());
    assert!(seen.len() >= 4, "{seen:?}");
    let mut sorted = seen.clone();
    sorted.sort_unstable();
    assert_eq!(seen, sorted, "snapshots arrive in stream order");
    assert!(seen.windows(2).all(|w| w[1] - w[0] == step), "{seen:?}");
}

#[test]
fn checkpoint_roundtrip_and_resume() {
    let w = world();
    let half = (w.posts.len() / 2) as u64;
    let exec = plan(2, 2);

    // First run: capture a checkpoint at 50%.
    let mut cp = None;
    ingest(
        &w,
        ReportStream::replay(&w),
        &CurationOptions::default(),
        &exec.clone().with_snapshots(SnapshotPlan::at(&[half])),
        &Obs::noop(),
        |s| {
            cp = Some(Checkpoint::capture(&s, &exec));
        },
    );
    let cp = cp.expect("snapshot fired");
    assert_eq!(cp.posts_consumed, half);
    assert!(!cp.dataset.is_empty());

    // Serde round-trip through the dataset layer.
    let json = cp.to_json().expect("serializes");
    let cp2 = Checkpoint::from_json(&json).expect("deserializes");
    assert_eq!(cp2.dataset, cp.dataset);
    assert_eq!(cp2.posts_consumed, half);

    // Resume: replays, verifies the dataset at the checkpoint, finishes.
    let resumed = resume(
        &w,
        ReportStream::replay(&w),
        &cp2,
        &CurationOptions::default(),
        &exec,
        |_| {},
    )
    .expect("same world");
    let batch = Pipeline::default().run(&w, &Obs::noop());
    assert_outputs_equal(&resumed.output, &batch, "resumed vs batch");

    // A checkpoint from another world is rejected.
    let other = World::generate(WorldConfig {
        seed: 1,
        scale: 0.02,
        ..WorldConfig::default()
    });
    assert!(resume(
        &other,
        ReportStream::replay(&other),
        &cp2,
        &CurationOptions::default(),
        &exec,
        |_| {}
    )
    .is_err());
}

#[test]
fn soak_feed_with_snapshot_keeps_running() {
    let w = world();
    let lap = w.posts.len() as u64;
    // One and a half laps of the infinite feed, snapshot at one lap.
    let budget = lap + lap / 2;
    let mut snap_posts = Vec::new();
    let result = ingest(
        &w,
        ReportStream::soak(&w).take(budget as usize),
        &CurationOptions::default(),
        &plan(2, 2).with_snapshots(SnapshotPlan::at(&[lap])),
        &Obs::noop(),
        |s| snap_posts.push(s.at_posts),
    );
    assert_eq!(result.posts_ingested, budget);
    assert_eq!(snap_posts, vec![lap]);
    // After exactly one lap the soak feed has replayed the world once.
    let batch = Pipeline::default().run(&w, &Obs::noop());
    assert!(result.output.curated_total.len() > batch.curated_total.len());
}
