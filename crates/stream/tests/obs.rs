//! Engine observability: instrumented runs stay batch-identical, the run
//! report carries the per-shard series, and worker panics surface.

use smishing_core::pipeline::Pipeline;
use smishing_core::CurationOptions;
use smishing_obs::Obs;
use smishing_stream::{ingest, ExecPlan, SnapshotPlan};
use smishing_worldsim::{Post, ReportStream, World, WorldConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn world() -> World {
    World::generate(WorldConfig {
        scale: 0.02,
        ..WorldConfig::default()
    })
}

#[test]
fn observed_ingest_matches_batch_and_reports_per_shard_metrics() {
    let w = world();
    let batch = Pipeline::default().run(&w, &Obs::noop());
    let obs = Obs::enabled();
    let plan = ExecPlan {
        curators: 2,
        shards: 4,
        ..ExecPlan::default()
    }
    .with_snapshots(SnapshotPlan::every(500));
    let mut snaps = 0usize;
    let result = ingest(
        &w,
        ReportStream::replay(&w),
        &CurationOptions::default(),
        &plan,
        &obs,
        |_| snaps += 1,
    );

    // Instrumentation must not perturb the output.
    assert_eq!(result.output.collection, batch.collection);
    assert_eq!(result.output.records.len(), batch.records.len());
    for (x, y) in result.output.records.iter().zip(&batch.records) {
        assert_eq!(x.curated.post_id, y.curated.post_id);
    }

    // Engine-level series.
    assert_eq!(
        obs.counter("exec.engine.posts_ingested", &[]).get(),
        result.posts_ingested
    );
    assert_eq!(
        obs.counter("exec.feeder.posts", &[]).get(),
        result.posts_ingested
    );
    assert_eq!(
        obs.counter("exec.snapshot.count", &[]).get(),
        result.snapshots_taken as u64
    );
    assert_eq!(snaps, result.snapshots_taken);
    assert!(result.snapshots_taken > 0, "plan fired");
    assert_eq!(
        obs.histogram("exec.snapshot.cost_ns", &[]).count(),
        result.snapshots_taken as u64
    );
    assert_eq!(obs.counter("exec.engine.worker_panics", &[]).get(), 0);

    // Per-shard counters sum to the curated total, and the merged
    // `shard="all"` enrichment histogram is the exact bucket sum.
    let per_shard_curated: u64 = (0..4)
        .map(|i| {
            obs.counter("exec.shard.curated", &[("shard", &i.to_string())])
                .get()
        })
        .sum();
    assert_eq!(per_shard_curated, result.output.curated_total.len() as u64);
    let merged = obs.histogram("exec.shard.enrich_ns", &[("shard", "all")]);
    let per_shard_enrich: u64 = (0..4)
        .map(|i| {
            obs.histogram("exec.shard.enrich_ns", &[("shard", &i.to_string())])
                .count()
        })
        .sum();
    assert_eq!(merged.count(), per_shard_enrich);
    assert!(merged.count() > 0, "shards enriched records");

    // Per-service enrichment meters ran inside the shards.
    assert!(obs.counter("enrich.hlr.calls", &[]).get() > 0);
    assert!(obs.histogram("enrich.whois.latency_ns", &[]).count() > 0);

    // The JSON run report carries the engine series.
    let json = obs.json_report();
    // Labeled keys appear JSON-escaped: `name{shard=\"0\"}`.
    for key in [
        r#"exec.shard.curated{shard=\"0\"}"#,
        r#"exec.shard.channel_depth{shard=\"0\"}"#,
        r#"exec.curator.channel_depth{curator=\"0\"}"#,
        r#"exec.shard.enrich_ns{shard=\"all\"}"#,
        "exec.snapshot.cost_ns",
        "exec.engine.posts_ingested",
        "enrich.hlr.calls",
    ] {
        assert!(json.contains(key), "report missing {key}:\n{json}");
    }
}

#[test]
fn noop_observed_ingest_equals_enabled_ingest() {
    let w = world();
    let plan = ExecPlan::default();
    let noop = ingest(
        &w,
        ReportStream::replay(&w),
        &CurationOptions::default(),
        &plan,
        &Obs::noop(),
        |_| {},
    );
    let observed = ingest(
        &w,
        ReportStream::replay(&w),
        &CurationOptions::default(),
        &plan,
        &Obs::enabled(),
        |_| {},
    );
    assert_eq!(observed.posts_ingested, noop.posts_ingested);
    assert_eq!(observed.output.collection, noop.output.collection);
    assert_eq!(observed.output.records.len(), noop.output.records.len());
}

/// A post stream that panics mid-flight, exercising the feeder's panic
/// path (the feeder drives this iterator on its own thread).
struct PanickingPosts {
    inner: std::vec::IntoIter<Post>,
    after: usize,
    yielded: usize,
}

impl Iterator for PanickingPosts {
    type Item = Post;

    fn next(&mut self) -> Option<Post> {
        if self.yielded == self.after {
            panic!("injected post-iterator failure");
        }
        self.yielded += 1;
        self.inner.next()
    }
}

#[test]
fn worker_panic_is_counted_and_propagated() {
    let w = world();
    let posts: Vec<Post> = ReportStream::replay(&w).collect();
    assert!(posts.len() > 50);
    let stream = PanickingPosts {
        inner: posts.into_iter(),
        after: 50,
        yielded: 0,
    };
    let obs = Obs::enabled();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        ingest(
            &w,
            stream,
            &CurationOptions::default(),
            &ExecPlan::default(),
            &obs,
            |_| {},
        )
    }));
    let payload = match caught {
        Ok(_) => panic!("the worker panic must reach the caller"),
        Err(payload) => payload,
    };
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("<non-str payload>");
    assert_eq!(msg, "injected post-iterator failure");
    assert_eq!(obs.counter("exec.engine.worker_panics", &[]).get(), 1);
}
