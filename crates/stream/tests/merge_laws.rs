//! Property tests for the accumulator merge laws the engine relies on:
//! merging is commutative and associative, shard-partitioned folds equal a
//! single sequential fold, and arrival order is immaterial under winner
//! retraction — for every incremental analysis at once (compared through
//! their rendered tables).

use proptest::prelude::*;
use smishing_core::curation::{CuratedMessage, CurationOptions};
use smishing_core::enrich::{enrich, EnrichedRecord};
use smishing_core::pipeline::Pipeline;
use smishing_stream::AnalysisAccs;
use smishing_worldsim::{World, WorldConfig};
use std::collections::HashMap;
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        World::generate(WorldConfig {
            scale: 0.01,
            ..WorldConfig::default()
        })
    })
}

/// Curated messages grouped by dedup key (the engine's shard routing
/// unit), so any partition of groups is a valid shard assignment.
fn groups() -> &'static Vec<Vec<CuratedMessage>> {
    static G: OnceLock<Vec<Vec<CuratedMessage>>> = OnceLock::new();
    G.get_or_init(|| {
        let out = Pipeline::default().run(world(), &smishing_obs::Obs::noop());
        let mode = CurationOptions::default().dedup;
        let mut by_key: HashMap<String, Vec<CuratedMessage>> = HashMap::new();
        for c in &out.curated_total {
            by_key.entry(c.dedup_key(mode)).or_default().push(c.clone());
        }
        let mut gs: Vec<Vec<CuratedMessage>> = by_key.into_values().collect();
        // Deterministic group order for reproducible partitions.
        gs.sort_by_key(|g| g.iter().map(|c| c.post_id).min());
        gs
    })
}

/// The engine's shard fold: accumulate curated messages, maintain the
/// min-post-id winner per dedup key, retract displaced records.
fn fold<'a>(messages: impl Iterator<Item = &'a CuratedMessage>) -> AnalysisAccs {
    let mode = CurationOptions::default().dedup;
    let mut accs = AnalysisAccs::new();
    let mut winners: HashMap<String, EnrichedRecord> = HashMap::new();
    for c in messages {
        accs.add_curated(c);
        let key = c.dedup_key(mode);
        match winners.get(&key) {
            None => {
                let rec = enrich(c.clone(), world());
                accs.add_record(&rec);
                winners.insert(key, rec);
            }
            Some(cur) if c.post_id < cur.curated.post_id => {
                let rec = enrich(c.clone(), world());
                accs.add_record(&rec);
                let old = winners.insert(key, rec).expect("winner present");
                accs.sub_record(&old);
            }
            Some(_) => {}
        }
    }
    accs
}

/// Canonical rendering of every analysis for comparison.
fn render(accs: &AnalysisAccs) -> String {
    accs.tables()
        .iter()
        .map(|(id, t)| format!("== {id}\n{t}\n"))
        .collect()
}

fn fold_partition(assign: &[usize], shard: usize) -> AnalysisAccs {
    fold(
        groups()
            .iter()
            .zip(assign)
            .filter(|(_, &s)| s == shard)
            .flat_map(|(g, _)| g.iter()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_fold_equals_sequential(assign in prop::collection::vec(0usize..4, groups().len())) {
        let mut merged = AnalysisAccs::new();
        for shard in 0..4 {
            merged.merge(fold_partition(&assign, shard));
        }
        let sequential = fold(groups().iter().flat_map(|g| g.iter()));
        prop_assert_eq!(render(&merged), render(&sequential));
    }

    #[test]
    fn merge_is_commutative(assign in prop::collection::vec(0usize..2, groups().len())) {
        let (a, b) = (fold_partition(&assign, 0), fold_partition(&assign, 1));
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        prop_assert_eq!(render(&ab), render(&ba));
    }

    #[test]
    fn merge_is_associative(assign in prop::collection::vec(0usize..3, groups().len())) {
        let parts: Vec<AnalysisAccs> = (0..3).map(|s| fold_partition(&assign, s)).collect();
        let mut left = parts[0].clone();
        left.merge(parts[1].clone());
        left.merge(parts[2].clone());
        let mut bc = parts[1].clone();
        bc.merge(parts[2].clone());
        let mut right = parts[0].clone();
        right.merge(bc);
        prop_assert_eq!(render(&left), render(&right));
    }

    #[test]
    fn arrival_order_is_immaterial(seed in 0u64..1_000_000) {
        // Shuffle all messages with a seeded Fisher-Yates; winner
        // replacement + retraction must converge to the same state as
        // post-id order.
        let mut all: Vec<&CuratedMessage> = groups().iter().flat_map(|g| g.iter()).collect();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for i in (1..all.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            all.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let shuffled = fold(all.iter().copied());
        let mut ordered: Vec<&CuratedMessage> = groups().iter().flat_map(|g| g.iter()).collect();
        ordered.sort_by_key(|c| c.post_id);
        let sequential = fold(ordered.iter().copied());
        prop_assert_eq!(render(&shuffled), render(&sequential));
    }

    #[test]
    fn merge_with_empty_is_identity(assign in prop::collection::vec(0usize..2, groups().len())) {
        let a = fold_partition(&assign, 0);
        let mut with_empty = a.clone();
        with_empty.merge(AnalysisAccs::new());
        let mut empty_with = AnalysisAccs::new();
        empty_with.merge(a.clone());
        prop_assert_eq!(render(&with_empty), render(&a));
        prop_assert_eq!(render(&empty_with), render(&a));
    }
}
